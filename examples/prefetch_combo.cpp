// prefetch_combo — demonstrates the paper's §V-C result with the public API:
// stride prefetching and ReDHiP attack different problems (latency of
// predictable accesses vs energy/latency of doomed lookups) and compose.
//
// Picks one regular workload (bwaves) and one irregular workload (mcf) and
// prints the 2x2 of {SP, ReDHiP} on/off, plus the prefetcher's accuracy
// accounting and how ReDHiP trims the prefetcher's wasted lookup energy.
//
//   ./prefetch_combo [--scale 8] [--refs 300000]
#include <cstdio>

#include "common/cli.h"
#include "harness/report.h"
#include "harness/run.h"

using namespace redhip;

namespace {

void study(BenchmarkId bench, std::uint32_t scale, std::uint64_t refs) {
  RunSpec spec;
  spec.bench = bench;
  spec.scale = scale;
  spec.refs_per_core = refs;

  struct Cell {
    const char* name;
    Scheme scheme;
    bool prefetch;
  };
  const Cell cells[4] = {{"Base", Scheme::kBase, false},
                         {"SP", Scheme::kBase, true},
                         {"ReDHiP", Scheme::kRedhip, false},
                         {"SP+ReDHiP", Scheme::kRedhip, true}};
  SimResult results[4];
  for (int i = 0; i < 4; ++i) {
    spec.scheme = cells[i].scheme;
    spec.prefetch = cells[i].prefetch;
    results[i] = run_spec(spec);
  }

  std::printf("== %s ==\n", to_string(bench).c_str());
  TablePrinter t({"config", "speedup", "dyn energy", "useful pf",
                  "useless pf", "PT bypasses"});
  for (int i = 0; i < 4; ++i) {
    const Comparison cmp = compare(results[0], results[i]);
    t.add_row({cells[i].name, pct_delta(cmp.speedup),
               pct(cmp.dyn_energy_ratio),
               std::to_string(results[i].prefetch.useful),
               std::to_string(results[i].prefetch.useless),
               std::to_string(results[i].predictor.predicted_absent)});
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts(argc, argv);
  const std::uint32_t scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 8));
  const std::uint64_t refs =
      static_cast<std::uint64_t>(opts.get_int("refs", 300'000));

  std::printf(
      "Prefetching x ReDHiP (paper §V-C): complementary mechanisms\n\n");
  study(BenchmarkId::kBwaves, scale, refs);  // regular: SP shines
  study(BenchmarkId::kMcf, scale, refs);     // irregular: ReDHiP shines

  std::printf(
      "Expected shape: SP helps the regular workload, ReDHiP the irregular "
      "one;\ncombined they add on performance while ReDHiP offsets part of "
      "SP's energy cost.\n");
  return 0;
}
