// custom_machine — evaluate ReDHiP on a machine defined in a text file.
//
// Without arguments this writes a sample 3-level config to /tmp, loads it
// back, and runs a workload comparison on it; point --config at your own
// file to evaluate an arbitrary hierarchy (see harness/config_file.h for
// the format).
//
//   ./custom_machine [--config machine.cfg] [--bench milc] [--refs 200000]
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "common/file_io.h"
#include "harness/config_file.h"
#include "harness/report.h"
#include "harness/run.h"

using namespace redhip;

namespace {

const char* kSampleConfig = R"(# A 3-level embedded-class machine (not Table I):
# small private L1/L2 under a 16M shared LLC.
cores = 8
freq_ghz = 2.5
scheme = redhip
inclusion = inclusive

[level]
size = 16K
ways = 4

[level]
size = 128K
ways = 8

[level]
size = 16M
ways = 16
banks = 8
split_tags = true

[redhip]
table_bits = 1M
recal_interval = 250000
recal_mode = rolling
banks = 4
)";

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts(argc, argv);
  std::string path = opts.get("config", "");
  const std::string bench_name = opts.get("bench", "milc");
  const std::uint64_t refs =
      static_cast<std::uint64_t>(opts.get_int("refs", 200'000));

  if (path.empty()) {
    path = "/tmp/redhip_sample_machine.cfg";
    // Atomic temp+rename: a concurrent run of this example never loads a
    // half-written sample.
    write_file_atomic(path, kSampleConfig).throw_if_error();
    std::printf("no --config given; wrote a sample 3-level machine to %s\n\n",
                path.c_str());
  }
  HierarchyConfig config = load_config_file(path);

  BenchmarkId bench = BenchmarkId::kMilc;
  for (BenchmarkId id : all_benchmarks()) {
    if (to_string(id) == bench_name) bench = id;
  }

  std::printf("machine from %s:\n%s\n", path.c_str(),
              config_to_text(config).c_str());

  // Run Base and the configured scheme on this machine.  Workload working
  // sets follow --scale (independent of the machine definition).
  const std::uint32_t ws_scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 8));
  auto run_with = [&](Scheme scheme) {
    HierarchyConfig c = config;
    c.scheme = scheme;
    if (scheme == Scheme::kBase) {
      // The baseline leg of the comparison must be clean: any [fault] /
      // [audit] sections apply only to the scheme under evaluation.
      c.fault = FaultConfig{};
      c.audit = {};
    }
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<std::uint32_t> cpis;
    for (CoreId core = 0; core < c.cores; ++core) {
      traces.push_back(make_workload(bench, core, ws_scale, 42));
      cpis.push_back(workload_cpi_centi(bench, core));
    }
    MulticoreSimulator sim(c, std::move(traces), std::move(cpis));
    return sim.run(refs);
  };
  const SimResult base = run_with(Scheme::kBase);
  const SimResult pred = run_with(config.scheme);
  const Comparison cmp = compare(base, pred);

  TablePrinter t({"metric", "value"});
  t.add_row({"workload", to_string(bench)});
  t.add_row({"levels", std::to_string(config.num_levels())});
  t.add_row({"scheme", to_string(config.scheme)});
  t.add_row({"speedup vs Base", pct_delta(cmp.speedup)});
  t.add_row({"dynamic energy vs Base", pct(cmp.dyn_energy_ratio)});
  t.add_row({"total energy vs Base", pct(cmp.total_energy_ratio)});
  t.add_row({"bypasses", std::to_string(pred.predictor.predicted_absent)});
  t.print();
  return 0;
}
