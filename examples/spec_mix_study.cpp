// spec_mix_study — a multiprogramming interference study using the public
// API, modeled on the paper's "mix" workload.
//
// Runs (a) each SPEC-like workload alone (duplicated on all 8 cores, the
// paper's methodology) and (b) the mixed workload (a different application
// per core), under Base and ReDHiP, and reports how cache interference in
// the shared LLC changes ReDHiP's effectiveness.
//
//   ./spec_mix_study [--scale 8] [--refs 300000]
#include <cstdio>

#include "common/cli.h"
#include "harness/report.h"
#include "harness/run.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions opts(argc, argv);
  RunSpec spec;
  spec.scale = static_cast<std::uint32_t>(opts.get_int("scale", 8));
  spec.refs_per_core =
      static_cast<std::uint64_t>(opts.get_int("refs", 300'000));

  std::printf(
      "Multiprogramming study: each SPEC profile duplicated 8x, then the "
      "8-way mix\n\n");
  TablePrinter t({"workload", "L4 hit (Base)", "offchip/L1miss",
                  "ReDHiP speedup", "ReDHiP dyn energy", "bypass rate"});

  std::vector<BenchmarkId> rows = spec_benchmarks();
  rows.push_back(BenchmarkId::kMix);
  for (BenchmarkId id : rows) {
    spec.bench = id;
    spec.scheme = Scheme::kBase;
    const SimResult base = run_spec(spec);
    spec.scheme = Scheme::kRedhip;
    const SimResult redhip = run_spec(spec);
    const Comparison cmp = compare(base, redhip);
    const double bypass_rate =
        static_cast<double>(redhip.predictor.predicted_absent) /
        static_cast<double>(redhip.predictor.lookups);
    t.add_row({to_string(id), pct(base.hit_rate(3)),
               pct(base.offchip_fraction()), pct_delta(cmp.speedup),
               pct(cmp.dyn_energy_ratio), pct(bypass_rate)});
  }
  t.print();
  std::printf(
      "\nReading the table: workloads whose L1 misses mostly leave the chip "
      "(high offchip fraction)\ngive ReDHiP the most to bypass; the mix row "
      "shows the effect of heterogeneous LLC contention.\n");
  return 0;
}
