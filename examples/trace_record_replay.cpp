// trace_record_replay — the trace-file workflow end to end.
//
// Demonstrates how real traces plug into the simulator: record a workload's
// reference stream to the binary trace format (the same thing a pintool
// converter would produce), then replay the files through the simulator and
// verify the results are identical to the live-generator run.  This is the
// path a user takes to evaluate ReDHiP on their own application traces.
//
//   ./trace_record_replay [--bench soplex] [--scale 16] [--refs 100000]
//                         [--dir /tmp]
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "harness/report.h"
#include "harness/run.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions opts(argc, argv);
  const std::uint32_t scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 16));
  const std::uint64_t refs =
      static_cast<std::uint64_t>(opts.get_int("refs", 100'000));
  const std::string bench_name = opts.get("bench", "soplex");
  const std::string dir = opts.get("dir", "/tmp");

  BenchmarkId bench = BenchmarkId::kSoplex;
  for (BenchmarkId id : all_benchmarks()) {
    if (to_string(id) == bench_name) bench = id;
  }
  const HierarchyConfig config =
      HierarchyConfig::scaled(scale, Scheme::kRedhip);

  // --- Record: one trace file per core, as the paper's pintool produced.
  std::vector<std::string> paths;
  for (CoreId c = 0; c < config.cores; ++c) {
    const std::string path =
        dir + "/redhip_" + to_string(bench) + "_core" + std::to_string(c) +
        ".trace";
    auto live = make_workload(bench, c, scale, /*seed=*/42);
    TraceWriter writer(path);
    MemRef m;
    for (std::uint64_t i = 0; i < refs && live->next(m); ++i) {
      writer.append(m);
    }
    writer.finish();
    paths.push_back(path);
  }
  std::printf("recorded %u trace files (%llu refs each, %.1f MB total)\n",
              config.cores, static_cast<unsigned long long>(refs),
              static_cast<double>(config.cores * refs * 16) / 1e6);

  // --- Replay the files through the simulator.
  auto run_with = [&](bool from_files) {
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<std::uint32_t> cpis;
    for (CoreId c = 0; c < config.cores; ++c) {
      if (from_files) {
        traces.push_back(std::make_unique<FileTraceSource>(paths[c]));
      } else {
        traces.push_back(make_workload(bench, c, scale, 42));
      }
      cpis.push_back(workload_cpi_centi(bench, c));
    }
    MulticoreSimulator sim(config, std::move(traces), std::move(cpis));
    return sim.run(refs);
  };
  const SimResult live = run_with(false);
  const SimResult replay = run_with(true);

  TablePrinter t({"run", "exec cycles", "L1 hit", "bypasses", "dyn energy uJ"});
  auto row = [&](const char* name, const SimResult& r) {
    t.add_row({name, std::to_string(r.exec_cycles), pct(r.hit_rate(0)),
               std::to_string(r.predictor.predicted_absent),
               fixed(r.energy.dynamic_total_j() * 1e6, 2)});
  };
  row("live generator", live);
  row("file replay", replay);
  t.print();

  const bool identical = live.exec_cycles == replay.exec_cycles &&
                         live.predictor.predicted_absent ==
                             replay.predictor.predicted_absent;
  std::printf("\nreplay %s the live run bit-for-bit\n",
              identical ? "MATCHES" : "DIVERGES FROM");

  for (const auto& p : paths) std::remove(p.c_str());
  return identical ? 0 : 1;
}
