// quickstart — the 60-second tour of the library.
//
// Builds a scaled-down version of the paper's 8-core, 4-level machine, runs
// one memory-hungry workload (mcf) under the Base configuration and under
// ReDHiP, and prints the headline numbers: speedup, dynamic and total cache
// energy savings, and what the predictor did.
//
// With --trace-events the ReDHiP run also records a per-epoch metric
// series and a JSONL event trace (recalibrations, epoch confusion counts)
// that scripts/plot_epochs.py renders; see DESIGN.md "Observability".
//
//   ./quickstart [--scale 8] [--refs 200000] [--bench mcf]
//                [--engine fast|reference|parallel] [--threads N]
//                [--trace-events redhip-events.jsonl] [--json report.json]
//                [--ckpt-file run.ckpt] [--ckpt-interval N] [--ckpt-restore]
//
// --json writes the ReDHiP run's full json_report to a file.  Engines are
// bit-identical, so the document (and the event trace) must compare equal
// byte for byte across --engine values — CI's parallel smoke job runs
// exactly that cmp.
//
// --ckpt-file makes the ReDHiP run crash-safe: SIGTERM/SIGINT checkpoint
// at the next safe boundary and exit with code 75; --ckpt-interval N also
// checkpoints every N aggregate references, so even kill -9 loses at most
// one interval.  Rerunning with --ckpt-restore resumes from the file and
// produces output bit-identical to an uninterrupted run — CI's
// crash-recovery job SIGKILLs this binary mid-run and cmp's the reports.
#include <algorithm>
#include <cstdio>
#include <string>

#include "ckpt/checkpoint_io.h"
#include "common/check.h"
#include "common/cli.h"
#include "common/file_io.h"
#include "harness/json_report.h"
#include "harness/report.h"
#include "harness/run.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions opts(argc, argv);
  const std::uint32_t scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 8));
  const std::uint64_t refs =
      static_cast<std::uint64_t>(opts.get_int("refs", 200'000));
  const std::string bench_name = opts.get("bench", "mcf");
  const std::string trace_events = opts.get("trace-events", "");
  const std::string json_path = opts.get("json", "");
  const std::string engine = opts.get("engine", "fast");
  const std::string ckpt_file = opts.get("ckpt-file", "");
  const std::uint64_t ckpt_interval = opts.get_uint64("ckpt-interval", 0);
  const bool ckpt_restore = opts.get_bool("ckpt-restore", false);

  BenchmarkId bench = BenchmarkId::kMcf;
  for (BenchmarkId id : all_benchmarks()) {
    if (to_string(id) == bench_name) bench = id;
  }

  // Catch SIGTERM/SIGINT from the start: a stop request during the Base leg
  // (which never polls) must not kill the process with the default action —
  // it latches the flag, and the ReDHiP leg checkpoints at its first safe
  // boundary and exits 75.
  const std::atomic<bool>* stop_flag =
      ckpt_file.empty() ? nullptr : install_shutdown_flag();

  std::printf("ReDHiP quickstart: %s, 8 cores, 4-level hierarchy (1/%u "
              "scale), %llu refs/core\n\n",
              to_string(bench).c_str(), scale,
              static_cast<unsigned long long>(refs));

  RunSpec spec;
  spec.bench = bench;
  spec.scale = scale;
  spec.refs_per_core = refs;
  if (engine == "fast") {
    spec.engine = SimEngine::kFast;
  } else if (engine == "reference") {
    spec.engine = SimEngine::kReference;
  } else if (engine == "parallel") {
    spec.engine = SimEngine::kParallel;
  } else {
    REDHIP_CHECK_MSG(false, "unknown engine: " + engine);
  }
  spec.threads = static_cast<std::uint32_t>(opts.get_int("threads", 0));

  spec.scheme = Scheme::kBase;
  const SimResult base = run_spec(spec);
  spec.scheme = Scheme::kRedhip;
  if (!trace_events.empty()) {
    spec.tweak = [&trace_events, refs](HierarchyConfig& hc) {
      hc.obs.enabled = true;
      // Eight epochs over the run, whatever --refs was.
      hc.obs.epoch_refs = std::max<std::uint64_t>(1, refs * hc.cores / 8);
      hc.obs.trace_path = trace_events;
    };
  }
  // Crash safety covers the ReDHiP leg only: one checkpoint file holds one
  // configuration (the key embeds the config digest), and the ReDHiP run is
  // the long, instrumented one worth resuming.  A kill during the short
  // Base leg just replays it.
  SimResult redhip;
  if (!ckpt_file.empty()) {
    spec.ckpt_path = ckpt_file;
    spec.ckpt_interval_refs = ckpt_interval;
    spec.ckpt_restore = ckpt_restore;
    spec.stop_flag = stop_flag;
    try {
      redhip = run_spec(spec);
    } catch (const GracefulShutdownRequest& e) {
      std::printf("\n%s — rerun with --ckpt-restore to resume from %s\n",
                  e.what(), ckpt_file.c_str());
      return kGracefulShutdownExitCode;
    }
  } else {
    redhip = run_spec(spec);
  }
  const Comparison c = compare(base, redhip);

  std::printf("hierarchy hit rates under Base:   L1 %s  L2 %s  L3 %s  L4 %s\n",
              pct(base.hit_rate(0)).c_str(), pct(base.hit_rate(1)).c_str(),
              pct(base.hit_rate(2)).c_str(), pct(base.hit_rate(3)).c_str());
  std::printf("fraction of L1 misses going off-chip: %s\n\n",
              pct(base.offchip_fraction()).c_str());

  std::printf("ReDHiP vs Base\n");
  std::printf("  speedup:               %s\n", pct_delta(c.speedup).c_str());
  std::printf("  dynamic cache energy:  %s\n",
              pct_delta(c.dyn_energy_ratio).c_str());
  std::printf("  total cache energy:    %s\n",
              pct_delta(c.total_energy_ratio).c_str());
  std::printf("  perf-energy metric:    %s\n\n",
              fixed(c.perf_energy_metric, 3).c_str());

  const auto& pe = redhip.predictor;
  std::printf("predictor activity\n");
  std::printf("  lookups:        %llu\n",
              static_cast<unsigned long long>(pe.lookups));
  std::printf("  bypasses taken: %llu (all verified correct by the no-false-"
              "negative invariant)\n",
              static_cast<unsigned long long>(pe.predicted_absent));
  std::printf("  false positives:%llu\n",
              static_cast<unsigned long long>(pe.false_positives));
  std::printf("  recalibrations: %llu (stall %llu cycles total)\n",
              static_cast<unsigned long long>(pe.recalibrations),
              static_cast<unsigned long long>(redhip.recal_stall_cycles));
  if (!trace_events.empty()) {
    std::printf("\nwrote %zu-epoch event trace to %s\n"
                "  plot it: python3 scripts/plot_epochs.py %s\n",
                redhip.epochs.size(), trace_events.c_str(),
                trace_events.c_str());
  }
  if (!json_path.empty()) {
    // Atomic temp+rename: nothing ever reads a half-written report.
    write_file_atomic(json_path, to_json(redhip)).throw_if_error();
    std::printf("wrote json_report to %s\n", json_path.c_str());
  }
  return 0;
}
