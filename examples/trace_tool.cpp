// trace_tool — command-line utility for the binary trace format.
//
//   trace_tool gen --bench mcf --core 0 --refs 500000 --out mcf0.trace
//       Generate a synthetic workload trace file.
//   trace_tool info --in mcf0.trace
//       Print header and summary statistics (address footprint, write
//       fraction, gap distribution) of a trace file.
//   trace_tool convert --in refs.txt --out refs.trace
//       Convert a text trace (one "R|W <addr-hex> <pc-hex> <gap>" per line,
//       the natural output of a pintool) to the binary format.
//
// Run with no arguments for a self-demo (gen + info on a temp file).
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "common/cli.h"
#include "harness/report.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

using namespace redhip;

namespace {

int cmd_gen(const CliOptions& opts, const std::string& out) {
  const std::string bench_name = opts.get("bench", "mcf");
  BenchmarkId bench = BenchmarkId::kMcf;
  for (BenchmarkId id : all_benchmarks()) {
    if (to_string(id) == bench_name) bench = id;
  }
  const CoreId core = static_cast<CoreId>(opts.get_int("core", 0));
  const std::uint64_t refs =
      static_cast<std::uint64_t>(opts.get_int("refs", 100'000));
  const std::uint32_t scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 8));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));

  auto src = make_workload(bench, core, scale, seed);
  TraceWriter writer(out);
  MemRef m;
  for (std::uint64_t i = 0; i < refs && src->next(m); ++i) writer.append(m);
  writer.finish();
  std::printf("wrote %llu records of %s (core %u, scale 1/%u) to %s\n",
              static_cast<unsigned long long>(writer.records_written()),
              to_string(bench).c_str(), core, scale, out.c_str());
  return 0;
}

int cmd_info(const std::string& in) {
  FileTraceSource src(in);
  std::printf("%s: %llu records\n", in.c_str(),
              static_cast<unsigned long long>(src.record_count()));

  MemRef m;
  std::uint64_t reads = 0, writes = 0, gaps = 0;
  std::set<LineAddr> lines;
  std::set<std::uint32_t> pcs;
  Addr lo = ~Addr{0}, hi = 0;
  std::map<std::uint16_t, std::uint64_t> gap_hist;
  while (src.next(m)) {
    (m.is_write ? writes : reads) += 1;
    gaps += m.gap;
    ++gap_hist[m.gap];
    lines.insert(m.addr >> kDefaultLineShift);
    pcs.insert(m.pc);
    lo = std::min(lo, m.addr);
    hi = std::max(hi, m.addr);
  }
  const double total = static_cast<double>(reads + writes);
  if (total == 0) {
    std::printf("empty trace\n");
    return 0;
  }
  TablePrinter t({"statistic", "value"});
  t.add_row({"reads", std::to_string(reads)});
  t.add_row({"writes", std::to_string(writes)});
  t.add_row({"write fraction", pct(static_cast<double>(writes) / total)});
  t.add_row({"distinct lines", std::to_string(lines.size())});
  t.add_row({"footprint",
             fixed(static_cast<double>(lines.size() * kDefaultLineBytes) /
                       (1024.0 * 1024.0),
                   1) + " MB"});
  t.add_row({"distinct PCs", std::to_string(pcs.size())});
  t.add_row({"mean gap", fixed(static_cast<double>(gaps) / total, 2)});
  char span[64];
  std::snprintf(span, sizeof(span), "0x%" PRIx64 "..0x%" PRIx64, lo, hi);
  t.add_row({"address span", span});
  t.print();
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out) {
  std::ifstream text(in);
  if (!text.good()) {
    std::fprintf(stderr, "cannot open %s\n", in.c_str());
    return 1;
  }
  TraceWriter writer(out);
  std::string kind;
  std::uint64_t addr, pc, gap;
  std::uint64_t line_no = 0;
  while (text >> kind >> std::hex >> addr >> pc >> std::dec >> gap) {
    ++line_no;
    if (kind != "R" && kind != "W") {
      std::fprintf(stderr, "line %llu: expected R or W, got '%s'\n",
                   static_cast<unsigned long long>(line_no), kind.c_str());
      return 1;
    }
    writer.append(MemRef{addr, static_cast<std::uint32_t>(pc),
                         static_cast<std::uint16_t>(gap), kind == "W"});
  }
  writer.finish();
  std::printf("converted %llu records -> %s\n",
              static_cast<unsigned long long>(writer.records_written()),
              out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts(argc, argv);
  const auto& pos = opts.positional();
  const std::string cmd = pos.empty() ? "demo" : pos[0];

  if (cmd == "gen") {
    return cmd_gen(opts, opts.get("out", "out.trace"));
  }
  if (cmd == "info") {
    return cmd_info(opts.get("in", "out.trace"));
  }
  if (cmd == "convert") {
    return cmd_convert(opts.get("in", "in.txt"), opts.get("out", "out.trace"));
  }
  if (cmd == "demo") {
    std::printf("trace_tool self-demo (see the header comment for usage)\n\n");
    const char* argv_gen[] = {"trace_tool", "--refs", "50000"};
    CliOptions gen_opts(3, const_cast<char**>(argv_gen));
    const std::string tmp = "/tmp/redhip_trace_tool_demo.trace";
    cmd_gen(gen_opts, tmp);
    std::printf("\n");
    cmd_info(tmp);
    std::remove(tmp.c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s' (gen | info | convert)\n",
               cmd.c_str());
  return 1;
}
