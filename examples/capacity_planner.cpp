// capacity_planner — an architect's what-if tool built on the public API.
//
// Given one workload, sweeps the two ReDHiP provisioning knobs — prediction
// table size and recalibration interval — and prints a 2-D grid of the
// perf-energy metric, marking the best configuration.  This is the design
// exploration a team adopting ReDHiP would run before committing silicon.
//
//   ./capacity_planner [--bench milc] [--scale 8] [--refs 200000]
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "harness/report.h"
#include "harness/run.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions opts(argc, argv);
  const std::uint32_t scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 8));
  const std::uint64_t refs =
      static_cast<std::uint64_t>(opts.get_int("refs", 200'000));
  const std::string bench_name = opts.get("bench", "milc");

  BenchmarkId bench = BenchmarkId::kMilc;
  for (BenchmarkId id : all_benchmarks()) {
    if (to_string(id) == bench_name) bench = id;
  }

  RunSpec spec;
  spec.bench = bench;
  spec.scale = scale;
  spec.refs_per_core = refs;
  spec.scheme = Scheme::kBase;
  const SimResult base = run_spec(spec);

  // PT sizes as shifts relative to the default (paper-scale 128K..2M), and
  // recalibration intervals as paper-scale L1-miss counts.
  const std::vector<std::pair<std::string, int>> sizes = {
      {"128K", -2}, {"256K", -1}, {"512K", 0}, {"1M", 1}, {"2M", 2}};
  const std::vector<std::pair<std::string, std::uint64_t>> intervals = {
      {"100K", 100'000}, {"1M", 1'000'000}, {"10M", 10'000'000}};

  std::printf(
      "ReDHiP capacity planning for %s: perf-energy metric over (PT size x "
      "recalibration interval)\n\n",
      to_string(bench).c_str());
  std::vector<std::string> headers{"PT \\ recal"};
  for (const auto& [label, iv] : intervals) headers.push_back(label);
  headers.push_back("PT overhead");
  TablePrinter t(headers);

  double best = 0.0;
  std::string best_at;
  for (const auto& [slabel, shift] : sizes) {
    std::vector<std::string> row{slabel};
    double overhead = 0.0;
    for (const auto& [ilabel, interval] : intervals) {
      spec.scheme = Scheme::kRedhip;
      spec.tweak = [shift = shift, interval = interval,
                    scale](HierarchyConfig& c) {
        c.redhip.table_bits = shift >= 0 ? c.redhip.table_bits << shift
                                         : c.redhip.table_bits >> -shift;
        c.redhip.recal_interval_l1_misses =
            std::max<std::uint64_t>(1, interval / scale);
      };
      const SimResult r = run_spec(spec);
      const Comparison cmp = compare(base, r);
      overhead = static_cast<double>(r.predictor.recal_words_written) /
                 1e6;  // proxy printed below per row
      row.push_back(fixed(cmp.perf_energy_metric, 3));
      if (cmp.perf_energy_metric > best) {
        best = cmp.perf_energy_metric;
        best_at = slabel + " / " + ilabel;
      }
    }
    (void)overhead;
    // PT area as a fraction of the LLC at this size.
    const double frac =
        0.78 * (shift >= 0 ? double(1 << shift) : 1.0 / double(1 << -shift));
    row.push_back(fixed(frac, 2) + "%");
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\nbest configuration: %s (metric %.3f)\n", best_at.c_str(),
              best);
  std::printf(
      "paper's choice: 512K / 1M — \"the prediction accuracy gain starts to "
      "become marginal when the table size goes beyond 512KB\"\n");
  return 0;
}
